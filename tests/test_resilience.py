"""Fault tolerance: containment, retry, quarantine, journal, chaos."""

import json
import os
import time

import numpy as np
import pytest

from repro.checkpoint import (
    AsyncCheckpointWriter,
    CheckpointStore,
    CorruptCheckpointError,
    ProviderPrefetcher,
    WeightCache,
)
from repro.cluster import (
    ChaosEvaluator,
    FaultModel,
    InjectedFault,
    ProcessPoolEvaluator,
    RetryPolicy,
    SerialEvaluator,
    SimulatedCluster,
    TaskFailure,
    TaskTimeout,
    ThreadPoolEvaluator,
    TraceJournal,
    WorkerLost,
    run_search,
)
from repro.cluster.resilience import classify_failure
from repro.cluster.trace import TraceRecord
from repro.nas import FAILURE_SCORE, RandomSearch, RegularizedEvolution


# module-level so ProcessPoolEvaluator can pickle them
def _boom():
    raise ValueError("worker task exploded")


def _die():
    os._exit(13)            # kills the worker process -> broken pool


def _const():
    return 42


# ---------------------------------------------------------------------------
# taxonomy + retry policy
# ---------------------------------------------------------------------------

def test_classify_failure_taxonomy():
    import concurrent.futures as cf
    assert classify_failure(TaskTimeout("t")) == "timeout"
    assert classify_failure(WorkerLost("w")) == "worker_lost"
    assert classify_failure(InjectedFault("i")) == "injected"
    assert classify_failure(
        CorruptCheckpointError("k", "p", ValueError())) == "corrupt_checkpoint"
    assert classify_failure(cf.BrokenExecutor("b")) == "worker_lost"
    assert classify_failure(ValueError("v")) == "task_error"


def test_task_failure_carries_kind():
    f = TaskFailure(ValueError("x"))
    assert f.kind == "task_error"
    assert "task_error" in repr(f)
    assert TaskFailure(ValueError("x"), kind="custom").kind == "custom"


def test_retry_policy_bounds():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    p = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0,
                    max_delay=0.25)
    assert p.should_retry(1) and p.should_retry(2)
    assert not p.should_retry(3)
    assert p.delay(1) == pytest.approx(0.1)
    assert p.delay(2) == pytest.approx(0.2)
    assert p.delay(3) == pytest.approx(0.25)   # capped at max_delay
    # max_attempts=1 is containment-only
    assert not RetryPolicy(max_attempts=1).should_retry(1)


def test_retry_jitter_is_seeded():
    p = RetryPolicy(base_delay=0.1, jitter=0.05)
    d1 = [p.delay(1, np.random.default_rng(7)) for _ in range(3)]
    d2 = [p.delay(1, np.random.default_rng(7)) for _ in range(3)]
    assert d1 == d2
    assert all(0.1 <= d <= 0.15 for d in d1)


# ---------------------------------------------------------------------------
# evaluator containment (satellite: every evaluator contains exceptions)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("make", [
    SerialEvaluator,
    lambda: ThreadPoolEvaluator(2),
    lambda: ProcessPoolEvaluator(2),
])
def test_evaluators_contain_task_exceptions(make):
    with make() as ev:
        ticket = ev.submit(_boom)
        got, result = ev.wait_any()
        assert got == ticket
        assert isinstance(result, TaskFailure)
        assert result.kind == "task_error"
        assert "exploded" in str(result.error)
        # the evaluator survives: a healthy task still completes
        ev.submit(_const)
        _, result = ev.wait_any()
        assert result == 42


def test_process_pool_recovers_from_dead_worker():
    with ProcessPoolEvaluator(2) as ev:
        ev.submit(_die)
        _, result = ev.wait_any()
        assert isinstance(result, TaskFailure)
        assert result.kind == "worker_lost"
        assert ev.pool_rebuilds >= 1
        # the rebuilt pool serves new work
        ev.submit(_const)
        _, result = ev.wait_any()
        assert result == 42


def test_failed_task_lands_as_failed_record(space, problem):
    """A worker exception becomes a FAILURE_SCORE record, not a crash."""
    ev = ChaosEvaluator(SerialEvaluator(), crash_prob=1.0, seed=0)
    trace = run_search(problem, RandomSearch(space, rng=0), 3,
                       scheme="baseline", evaluator=ev, seed=0)
    assert len(trace) == 3
    for r in trace:
        assert not r.ok
        assert r.score == FAILURE_SCORE
        assert r.error.startswith("injected:")
    fs = trace.fault_stats
    assert fs["by_kind"]["injected"] == 3
    assert fs["failed_records"] == 3
    assert fs["retries"] == 0              # default policy: containment only
    assert fs["chaos"]["injected"]["crash"] == 3


# ---------------------------------------------------------------------------
# chaos + retry: the search completes and stays deterministic
# ---------------------------------------------------------------------------

def test_chaos_with_retry_completes_all_candidates(space, problem):
    ev = ChaosEvaluator(SerialEvaluator(), crash_prob=0.4, seed=3)
    trace = run_search(problem, RandomSearch(space, rng=0), 8,
                       scheme="baseline", evaluator=ev, seed=0,
                       retry=RetryPolicy(max_attempts=4, base_delay=0.0,
                                         jitter=0.0))
    assert len(trace) == 8
    assert all(r.ok for r in trace)
    fs = trace.fault_stats
    assert fs["retries"] > 0
    assert fs["failed_records"] == 0
    assert max(r.attempts for r in trace) > 1


def test_chaos_crashes_do_not_perturb_scores(space, problem):
    """Crash-only chaos + retry reproduces the clean run bit-for-bit:
    retries and jitter draw from dedicated rng streams."""
    def run(evaluator):
        return run_search(problem, RandomSearch(space, rng=0), 6,
                          scheme="baseline", evaluator=evaluator, seed=0,
                          retry=RetryPolicy(max_attempts=5,
                                            base_delay=0.0, jitter=0.01))

    clean = run(SerialEvaluator())
    chaos = run(ChaosEvaluator(SerialEvaluator(), crash_prob=0.5, seed=11))
    assert [(r.arch_seq, r.score) for r in clean] == \
           [(r.arch_seq, r.score) for r in chaos]


def test_chaos_corrupt_result_is_contained(space, problem):
    ev = ChaosEvaluator(SerialEvaluator(), corrupt_prob=1.0, seed=0)
    trace = run_search(problem, RandomSearch(space, rng=0), 2,
                       scheme="baseline", evaluator=ev, seed=0)
    assert len(trace) == 2
    for r in trace:
        assert not r.ok and r.score == FAILURE_SCORE
    assert trace.fault_stats["by_kind"]["corrupt_result"] == 2


def test_task_timeout_abandons_hung_workers(space, problem):
    ev = ChaosEvaluator(ThreadPoolEvaluator(2), hang_prob=1.0,
                        hang_seconds=5.0, seed=0)
    trace = run_search(problem, RandomSearch(space, rng=0), 2,
                       scheme="baseline", evaluator=ev, seed=0,
                       task_timeout=0.2)
    assert len(trace) == 2
    for r in trace:
        assert not r.ok
        assert r.error.startswith("timeout:")
    assert trace.fault_stats["by_kind"]["timeout"] >= 2


# ---------------------------------------------------------------------------
# corrupt checkpoints: store-level + scheduler quarantine
# ---------------------------------------------------------------------------

def _truncate(path):
    blob = path.read_bytes()
    path.write_bytes(blob[: max(1, len(blob) // 3)])


def test_store_load_raises_corrupt_checkpoint(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save("w", {"a": np.arange(6, dtype=np.float32)})
    _truncate(store.path("w"))
    with pytest.raises(CorruptCheckpointError) as err:
        store.load("w")
    assert err.value.key == "w"
    # missing keys are still FileNotFoundError, not "corrupt"
    with pytest.raises(FileNotFoundError):
        store.load("nope")


def test_store_quarantine_moves_files(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save("bad", {"a": np.ones(3, dtype=np.float32)},
               meta={"x": 1})
    _truncate(store.path("bad"))
    store.quarantine("bad")
    assert not store.exists("bad")
    assert store.quarantined_keys() == ["bad"]
    assert (store.quarantine_root / store.path("bad").name).exists()


def test_scheduler_quarantines_corrupt_provider(space, problem, tmp_path):
    """A corrupt provider checkpoint is quarantined and the candidate
    cold-starts — the search itself finishes every candidate."""
    class CorruptingStore(CheckpointStore):
        def save(self, key, weights, meta=None):
            info = super().save(key, weights, meta)
            _truncate(self.path(key))
            return info

    store = CorruptingStore(tmp_path)
    strategy = RegularizedEvolution(space, rng=0, population_size=4,
                                    sample_size=2)
    trace = run_search(problem, strategy, 10, scheme="lcs", store=store,
                       seed=0)
    assert len(trace) == 10
    fs = trace.fault_stats
    assert fs["quarantined"] >= 1
    assert fs["by_kind"]["corrupt_checkpoint"] == fs["quarantined"]
    assert all(r.provider_id is None for r in trace)   # all cold starts
    assert len(store.quarantined_keys()) == fs["quarantined"]


def test_prefetcher_counts_corrupt_loads(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save("good", {"a": np.ones(4, dtype=np.float32)})
    store.save("bad", {"a": np.ones(4, dtype=np.float32)})
    _truncate(store.path("bad"))
    cache = WeightCache()
    with ProviderPrefetcher(store, cache) as pf:
        pf.request(["good", "bad"])
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            stats = pf.stats()
            if stats["loaded"] + stats["errors"] >= 2:
                break
            time.sleep(0.01)
    assert stats["loaded"] == 1
    assert stats["errors"] == 1
    assert stats["corrupt"] == 1
    assert stats["last_error"].startswith("bad:")


def test_writer_error_log_keeps_every_failure(tmp_path):
    class FlakyStore(CheckpointStore):
        def save(self, key, weights, meta=None):
            if key.startswith("fail"):
                raise OSError(f"disk gone for {key}")
            return super().save(key, weights, meta)

    w = {"a": np.ones(2, dtype=np.float32)}
    writer = AsyncCheckpointWriter(FlakyStore(tmp_path))
    writer.save("fail1", w)
    writer.save("ok", w)
    writer.save("fail2", w)
    with pytest.raises(OSError):
        writer.flush()                      # raise-on-first-error contract
    writer.flush()                          # errors cleared; healthy again
    writer.close()
    log = writer.error_log()
    assert [k for k, _ in log] == ["fail1", "fail2"]    # both kept
    assert all("disk gone" in msg for _, msg in log)
    assert "ok" in writer.results()


# ---------------------------------------------------------------------------
# journal + resume
# ---------------------------------------------------------------------------

def test_journal_roundtrip(tmp_path):
    path = tmp_path / "j.jsonl"
    records = [TraceRecord(candidate_id=i, arch_seq=(i, 1), score=0.1 * i,
                           scheme="lcs", ok=True) for i in range(3)]
    with TraceJournal(path, name="run", scheme="lcs") as j:
        for r in records:
            j.append(r)
    header, replayed = TraceJournal.replay(path)
    assert header["name"] == "run" and header["scheme"] == "lcs"
    assert replayed == records
    trace = TraceJournal.to_trace(path)
    assert len(trace) == 3 and trace.scheme == "lcs"


def test_journal_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "j.jsonl"
    with TraceJournal(path, name="run") as j:
        j.append(TraceRecord(candidate_id=0, arch_seq=(0,), score=1.0,
                             scheme="baseline"))
    with open(path, "a") as fh:
        fh.write('{"candidate_id": 1, "arch_')     # killed mid-write
    _, replayed = TraceJournal.replay(path)
    assert [r.candidate_id for r in replayed] == [0]
    # a torn line anywhere else is data corruption and must raise
    lines = path.read_text().splitlines()
    path.write_text("\n".join([lines[0], "{broken", lines[1]]) + "\n")
    with pytest.raises(json.JSONDecodeError):
        TraceJournal.replay(path)


def test_resume_replays_journal_bit_identically(space, problem, tmp_path):
    journal = tmp_path / "run.jsonl"

    def strategy():
        return RegularizedEvolution(space, rng=5, population_size=4,
                                    sample_size=2)

    full = run_search(problem, strategy(), 8, scheme="baseline", seed=5,
                      journal=tmp_path / "full.jsonl")
    # "killed" run: only the first 5 candidates landed in the journal
    run_search(problem, strategy(), 5, scheme="baseline", seed=5,
               journal=journal)
    resumed = run_search(problem, strategy(), 8, scheme="baseline", seed=5,
                         resume=journal)
    assert len(resumed) == 8
    assert resumed.fault_stats["resumed_records"] == 5
    # replayed candidates are bit-identical to the uninterrupted run
    for a, b in zip(full.records[:5], resumed.records[:5]):
        assert (a.candidate_id, a.arch_seq, a.score) == \
               (b.candidate_id, b.arch_seq, b.score)
    # the journal now holds the full resumed run
    _, replayed = TraceJournal.replay(journal)
    assert [r.candidate_id for r in replayed] == list(range(8))


def test_resume_of_complete_journal_is_a_noop_run(space, problem, tmp_path):
    journal = tmp_path / "run.jsonl"
    first = run_search(problem, RandomSearch(space, rng=2), 4,
                       scheme="baseline", seed=2, journal=journal)
    again = run_search(problem, RandomSearch(space, rng=2), 4,
                       scheme="baseline", seed=2, resume=journal)
    assert [(r.candidate_id, r.score) for r in again.records] == \
           [(r.candidate_id, r.score) for r in first.records]


def test_evolution_restore_fast_forwards_warmup(space):
    ev = RegularizedEvolution(space, rng=0, population_size=4,
                              sample_size=2)
    records = [TraceRecord(candidate_id=i, arch_seq=tuple(space.sample(
        np.random.default_rng(i))), score=float(i), scheme="baseline",
        ok=True) for i in range(6)]
    ev.restore(records)
    assert len(ev.population) == 4          # FIFO keeps the newest 4
    assert ev._asked == 6                   # past warmup: next ask evolves
    proposal = ev.ask()
    assert proposal.parent_id is not None


# ---------------------------------------------------------------------------
# simulator fault model
# ---------------------------------------------------------------------------

def test_fault_model_validates():
    with pytest.raises(ValueError):
        FaultModel(crash_prob=1.5)
    with pytest.raises(ValueError):
        FaultModel(straggler_factor=0.5)


def test_sim_zero_rate_faults_match_clean_run(space, problem, tmp_path):
    def run(root, faults):
        cluster = SimulatedCluster(problem, CheckpointStore(root),
                                   num_gpus=2)
        strategy = RegularizedEvolution(space, rng=1, population_size=4,
                                        sample_size=2)
        return cluster.run(strategy, 6, scheme="lcs", seed=1, faults=faults)

    clean = run(tmp_path / "a", None)
    zero = run(tmp_path / "b", FaultModel())
    assert [(r.arch_seq, r.score, r.end_time) for r in clean] == \
           [(r.arch_seq, r.score, r.end_time) for r in zero]
    assert clean.fault_stats is None
    assert zero.fault_stats["total_faults"] == 0


def test_sim_crashes_cost_virtual_time(space, problem, tmp_path):
    def run(root, faults):
        cluster = SimulatedCluster(problem, CheckpointStore(root),
                                   num_gpus=2)
        strategy = RegularizedEvolution(space, rng=1, population_size=4,
                                        sample_size=2)
        return cluster.run(strategy, 8, scheme="lcs", seed=1, faults=faults,
                           retry=RetryPolicy(max_attempts=8, base_delay=1.0,
                                             jitter=0.0))

    clean = run(tmp_path / "a", None)
    faulty = run(tmp_path / "b", FaultModel(crash_prob=0.5,
                                            straggler_prob=0.2))
    assert len(faulty) == 8
    assert faulty.makespan > clean.makespan
    fs = faulty.fault_stats
    assert fs["by_kind"].get("injected", 0) > 0
    assert fs["retries"] > 0
    # the retry budget absorbs every crash: no candidate is lost (faults
    # shift completion times, so the *trajectory* may legitimately differ
    # from the clean run — only the zero-rate model is bit-identical)
    assert fs["failed_records"] == 0
    assert all(r.ok for r in faulty)
    assert fs["backoff_seconds"] > 0


def test_sim_corrupt_writes_reach_quarantine(space, problem, tmp_path):
    cluster = SimulatedCluster(problem, CheckpointStore(tmp_path),
                               num_gpus=2)
    strategy = RegularizedEvolution(space, rng=1, population_size=4,
                                    sample_size=2)
    trace = cluster.run(strategy, 12, scheme="lcs", seed=1,
                        faults=FaultModel(corrupt_prob=1.0))
    assert len(trace) == 12
    fs = trace.fault_stats
    assert fs["by_kind"]["corrupt_write"] > 0
    # every provider read of a corrupted npz hit the quarantine path
    assert fs["quarantined"] == fs["by_kind"].get("corrupt_checkpoint", 0)
    assert fs["quarantined"] > 0


def test_fault_stats_roundtrip_trace_jsonl(space, problem, tmp_path):
    ev = ChaosEvaluator(SerialEvaluator(), crash_prob=1.0, seed=0)
    trace = run_search(problem, RandomSearch(space, rng=0), 2,
                       scheme="baseline", evaluator=ev, seed=0)
    path = tmp_path / "t.jsonl"
    trace.save_jsonl(path)
    from repro.cluster import Trace
    loaded = Trace.load_jsonl(path)
    assert loaded.fault_stats == trace.fault_stats
    assert [r.attempts for r in loaded] == [r.attempts for r in trace]
    assert [r.error for r in loaded] == [r.error for r in trace]


# ---------------------------------------------------------------------------
# concurrent-session journal recovery (service drain/kill mid-run)
# ---------------------------------------------------------------------------

def test_concurrent_sessions_recover_bit_identically(space, problem,
                                                     tmp_path):
    """Kill a service mid-run with several active sessions, recover,
    and check every session's replayed records are bit-identical to the
    records it had already journaled — then every session completes."""
    from repro.checkpoint import ShardedCheckpointStore
    from repro.service import SearchService, SessionSpec, SessionState

    def spec(seed, **kw):
        return SessionSpec(
            problem=problem,
            strategy=RegularizedEvolution(space, rng=seed,
                                          population_size=4,
                                          sample_size=2),
            num_candidates=6, tenant=f"tenant{seed % 2}", seed=seed,
            scheme="lcs", **kw)

    def record_key(r):
        return (r.candidate_id, r.arch_seq, r.score, r.provider_id, r.ok)

    store = ShardedCheckpointStore(tmp_path / "store", num_shards=2)
    svc = SearchService(evaluator=SerialEvaluator(), store=store,
                        journal_dir=tmp_path / "j")
    landed = [0]

    def drain_after_eight(record):
        landed[0] += 1
        if landed[0] == 8:          # "kill" arrives mid-run, all active
            svc.request_drain()

    handles = [svc.submit(spec(seed, on_record=drain_after_eight))
               for seed in range(3)]
    svc.drive()
    interrupted = {h.session_id: h for h in handles
                   if h.poll().state == SessionState.INTERRUPTED}
    assert interrupted                       # the drain caught some mid-run
    journaled = {}
    for sid in interrupted:
        _, records = TraceJournal.replay(tmp_path / "j" / f"{sid}.jsonl")
        journaled[sid] = [record_key(r) for r in records]

    revived = SearchService(evaluator=SerialEvaluator(), store=store,
                            journal_dir=tmp_path / "j")
    recovered = revived.recover(
        {h.session_id: spec(seed)
         for seed, h in enumerate(handles)
         if h.session_id in interrupted})
    assert {h.session_id for h in recovered} == set(interrupted)
    revived.drive()
    for handle in recovered:
        sid = handle.session_id
        assert handle.poll().state == SessionState.DONE
        trace = handle.result()
        assert len(trace) == 6
        prefix = [record_key(r) for r in trace.records[:len(journaled[sid])]]
        assert prefix == journaled[sid]      # replay is bit-identical
        if journaled[sid]:                   # a never-started session
            assert trace.fault_stats["resumed_records"] == \
                len(journaled[sid])          # resumes with no fault entry
    assert revived.recoverable_sessions() == {}
