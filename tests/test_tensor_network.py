"""Network construction, weights dict, and space-built model tests."""

import numpy as np

from repro.nas import DenseOp, FlattenOp, SearchSpace


def test_built_network_runs_and_counts_params(space, problem):
    seq = space.validate_seq((1, 1, 1))   # Dense(8,relu) / relu / Dense(8)
    model = problem.build_model(seq, rng=0)
    x = np.zeros((2, 6, 6, 2))
    assert model.forward(x).shape == (2, 4)
    # flatten(72) -> dense0(8) -> act -> dense1(8) -> head(4)
    expected = (72 * 8 + 8) + (8 * 8 + 8) + (8 * 4 + 4)
    assert model.num_parameters() == expected


def test_get_set_weights_round_trip(space, problem):
    seq = space.sample(np.random.default_rng(0))
    a = problem.build_model(seq, rng=0)
    b = problem.build_model(seq, rng=1)
    weights = a.get_weights()
    assert all(isinstance(k, str) and "." in k for k in weights)
    b.set_weights(weights)
    x = np.random.default_rng(2).normal(size=(3, 6, 6, 2))
    assert np.allclose(a.forward(x), b.forward(x))


def test_weight_names_follow_node_naming(space, problem):
    seq = space.validate_seq((1, 0, 0))
    model = problem.build_model(seq, rng=0)
    names = set(model.get_weights())
    assert "head_dense.kernel" in names
    assert "head_dense.bias" in names
    assert any(n.startswith("dense0_dense.") for n in names)


def test_same_seed_same_init(space, problem):
    seq = space.sample(np.random.default_rng(3))
    w0 = problem.build_model(seq, rng=7).get_weights()
    w1 = problem.build_model(seq, rng=7).get_weights()
    assert all(np.array_equal(w0[k], w1[k]) for k in w0)


def test_identity_choices_add_no_parameters():
    space = SearchSpace("t", (4, 4, 1))
    space.add_fixed(FlattenOp(), name="flatten")
    space.add_variable("d", [DenseOp(4), DenseOp(8)])
    space.add_fixed(DenseOp(2), name="head")
    small = space.build_network(space.validate_seq((0,)),
                                np.random.default_rng(0))
    big = space.build_network(space.validate_seq((1,)),
                              np.random.default_rng(0))
    assert big.num_parameters() > small.num_parameters()
