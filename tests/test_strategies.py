"""Ask/tell strategies: random search and regularized evolution."""

import numpy as np
import pytest

from repro.nas import Proposal, RandomSearch, RegularizedEvolution


def test_random_search_never_sets_parent(space):
    strategy = RandomSearch(space, rng=0)
    for cid in range(10):
        p = strategy.ask()
        assert isinstance(p, Proposal)
        assert p.parent_id is None
        assert len(p.arch_seq) == space.num_variable_nodes
        strategy.tell(cid, p.arch_seq, 0.5)


def test_evolution_warms_up_randomly_then_breeds(space):
    strategy = RegularizedEvolution(space, rng=0, population_size=4,
                                    sample_size=2)
    for cid in range(4):
        p = strategy.ask()
        assert p.parent_id is None           # random warmup
        strategy.tell(cid, p.arch_seq, float(cid))
    bred = strategy.ask()
    assert bred.parent_id is not None
    parent = next(m for m in strategy.population
                  if m.candidate_id == bred.parent_id)
    assert space.distance(parent.arch_seq, bred.arch_seq) == 1


def test_evolution_best_tournament_prefers_high_scores(space):
    strategy = RegularizedEvolution(space, rng=0, population_size=4,
                                    sample_size=4)
    seqs = [space.sample(np.random.default_rng(i)) for i in range(4)]
    for cid, seq in enumerate(seqs):
        strategy.ask()
        strategy.tell(cid, seq, 1.0 if cid == 2 else 0.0)
    p = strategy.ask()
    assert p.parent_id == 2                  # full-sample tournament


def test_evolution_population_ages_out(space):
    strategy = RegularizedEvolution(space, rng=0, population_size=3,
                                    sample_size=1)
    for cid in range(10):
        p = strategy.ask()
        strategy.tell(cid, p.arch_seq, 0.0)
    assert len(strategy.population) == 3
    assert [m.candidate_id for m in strategy.population] == [7, 8, 9]


def test_evolution_tolerates_ask_before_tell(space):
    strategy = RegularizedEvolution(space, rng=0, population_size=3,
                                    sample_size=2)
    proposals = [strategy.ask() for _ in range(8)]   # 8 in flight, 0 told
    assert all(p.parent_id is None for p in proposals)
    strategy.tell(0, proposals[0].arch_seq, 0.1)
    p = strategy.ask()                                # now it can breed
    assert p.parent_id == 0


def test_evolution_validates_configuration(space):
    with pytest.raises(ValueError):
        RegularizedEvolution(space, population_size=2, sample_size=4)
    with pytest.raises(ValueError):
        RegularizedEvolution(space, tournament="roulette")


def test_aging_tournament_picks_oldest(space):
    strategy = RegularizedEvolution(space, rng=0, population_size=4,
                                    sample_size=4, tournament="aging")
    for cid in range(4):
        strategy.ask()
        strategy.tell(cid, space.sample(np.random.default_rng(cid)),
                      float(cid))
    assert strategy.ask().parent_id == 0
