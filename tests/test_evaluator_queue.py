"""Evaluator wait_any via the done-queue: O(1) pops, order-robust.

The pool evaluators used to re-scan every outstanding future with
``cf.wait`` on each ``wait_any`` call (O(n) per wait, O(n^2) per run);
completions now flow through a done-callback into a queue.  These tests
pin the interface contract the scheduler relies on: ticket/result pairs
match regardless of completion order, ``in_flight`` tracks outstanding
work, and instantly finishing tasks are still matched to their ticket.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster.evaluator import (ProcessPoolEvaluator, SerialEvaluator,
                                     ThreadPoolEvaluator)


def _square(x):
    return x * x


class _Sleeper:
    """Picklable task: sleeps then returns its tag."""

    def __init__(self, delay, tag):
        self.delay = delay
        self.tag = tag

    def __call__(self):
        time.sleep(self.delay)
        return self.tag


@pytest.mark.parametrize("make", [SerialEvaluator,
                                  lambda: ThreadPoolEvaluator(num_workers=4)])
def test_tickets_match_results(make):
    with make() as ev:
        tickets = {ev.submit(lambda v=v: _square(v)): v for v in range(8)}
        seen = {}
        while ev.in_flight:
            ticket, result = ev.wait_any()
            seen[ticket] = result
    assert seen == {t: v * v for t, v in tickets.items()}


def test_out_of_order_completion_matches_tickets():
    with ThreadPoolEvaluator(num_workers=3) as ev:
        t_slow = ev.submit(_Sleeper(0.20, "slow"))
        t_fast = ev.submit(_Sleeper(0.0, "fast"))
        first = ev.wait_any()
        second = ev.wait_any()
    assert first == (t_fast, "fast")
    assert second == (t_slow, "slow")


def test_instantly_finished_task_found_by_ticket():
    """The future must be registered before the done-callback is wired,
    otherwise a task that completes during submit loses its ticket."""
    with ThreadPoolEvaluator(num_workers=1) as ev:
        ticket = ev.submit(lambda: "done")
        time.sleep(0.05)  # let the callback fire before wait_any
        assert ev.wait_any() == (ticket, "done")


def test_in_flight_counts_down():
    release = threading.Event()
    with ThreadPoolEvaluator(num_workers=2) as ev:
        for _ in range(3):
            ev.submit(release.wait)
        assert ev.in_flight == 3
        release.set()
        for expected in (2, 1, 0):
            ev.wait_any()
            assert ev.in_flight == expected


def test_wait_any_without_pending_raises():
    for ev in (SerialEvaluator(), ThreadPoolEvaluator(num_workers=1)):
        with ev, pytest.raises(RuntimeError):
            ev.wait_any()


def test_many_waits_drain_quickly():
    """Smoke for the O(n^2) fix: hundreds of submit/wait cycles complete
    promptly (the old path re-waited on every live future each call)."""
    n = 300
    t0 = time.perf_counter()
    with ThreadPoolEvaluator(num_workers=8) as ev:
        for v in range(n):
            ev.submit(lambda v=v: v)
        got = sorted(ev.wait_any()[1] for _ in range(n))
    assert got == list(range(n))
    assert time.perf_counter() - t0 < 10.0


def test_process_pool_round_trip():
    with ProcessPoolEvaluator(num_workers=2) as ev:
        tickets = {ev.submit(_Sleeper(0.0, tag)): tag for tag in ("a", "b")}
        results = dict(ev.wait_any() for _ in range(2))
    assert results == tickets
