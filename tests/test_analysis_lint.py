"""The invariant linter: fixture violations, suppression, clean tree.

Fixtures are copied to a tmp dir before linting because rule scoping is
path-based — under ``tests/`` the linter deliberately relaxes R005."""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, lint_paths, main

REPO = Path(__file__).resolve().parents[1]
FIXTURE = Path(__file__).parent / "fixtures" / "lint_fixture"


@pytest.fixture()
def fixture_tree(tmp_path):
    dst = tmp_path / "fixture"
    shutil.copytree(FIXTURE, dst)
    return dst


def test_fixture_triggers_every_rule(fixture_tree):
    findings = lint_paths([fixture_tree])
    assert {f.code for f in findings} == set(RULES)


@pytest.mark.parametrize("rel, codes", [
    ("bad_alloc.py", {"R001"}),
    ("tensor/reference_ops.py", {"R002"}),
    ("tensor/optimizers.py", {"R003"}),
    # the stale declaration is both an assertion mismatch (R004) and a
    # genuine unguarded shared write (R007)
    ("cluster/evaluator.py", {"R004", "R007"}),
    ("uses_reference.py", {"R005"}),
    ("transfer/supernet.py", {"R006"}),
    ("cluster/racy.py", {"R007"}),
    ("cluster/locks_cycle.py", {"R008"}),
    ("bad_pickle.py", {"R009"}),
    ("tensor/engine.py", {"R010"}),
])
def test_each_fixture_file_yields_exactly_its_rules(fixture_tree, rel, codes):
    findings = lint_paths([fixture_tree / "repro" / rel])
    assert {f.code for f in findings} == codes


def test_suppression_comment_silences_finding(fixture_tree):
    assert lint_paths([fixture_tree / "repro" / "suppressed.py"]) == []


def test_r006_suppression(fixture_tree):
    path = fixture_tree / "repro" / "transfer" / "supernet.py"
    source = path.read_text().replace(
        "return view.copy()",
        "return view.copy()  # lint: ignore[R006]")
    path.write_text(source)
    assert lint_paths([path]) == []


def test_findings_carry_location_and_message(fixture_tree):
    finding, = lint_paths([fixture_tree / "repro" / "bad_alloc.py"])
    assert finding.line == 7
    assert "dtype" in finding.message
    assert str(finding).startswith(finding.path)


def test_main_exit_codes(fixture_tree, capsys):
    assert main([str(fixture_tree)]) == 1
    assert "R002" in capsys.readouterr().out
    assert main([str(fixture_tree / "repro" / "suppressed.py")]) == 0


def test_format_json(fixture_tree, capsys):
    assert main(["--format", "json",
                 str(fixture_tree / "repro" / "bad_alloc.py")]) == 1
    records = json.loads(capsys.readouterr().out)
    assert records == [{
        "path": (fixture_tree / "repro" / "bad_alloc.py").as_posix(),
        "line": 7, "col": 11, "code": "R001",
        "message": records[0]["message"],
    }]
    assert "dtype" in records[0]["message"]


def test_format_json_empty_is_valid(fixture_tree, capsys):
    assert main(["--format", "json",
                 str(fixture_tree / "repro" / "suppressed.py")]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_src_tree_is_clean():
    findings = lint_paths([REPO / "src" / "repro"])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_module_cli_entrypoint():
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint",
         str(REPO / "src" / "repro")],
        env=env, capture_output=True, text=True, cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
