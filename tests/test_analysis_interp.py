"""Unit tests for the static graph analyzer (``repro.analysis``)."""

import pytest

from repro.analysis import ANALYZED_KINDS, analyze
from repro.nas import (
    ConcatenateOp,
    Conv2DOp,
    DenseOp,
    FlattenOp,
    IdentityOp,
    MaxPool2DOp,
    SearchSpace,
)
from repro.tensor import OP_METADATA


def codes(report):
    return {d.code for d in report.diagnostics}


def test_analyze_matches_known_shapes(space):
    report = analyze(space, (1, 1, 1))
    assert report.ok
    # dense0(8) -> dense1(8) -> head(4); activations carry no parameters
    assert report.shape_sequence == (
        ((72, 8), (8,)),
        ((8, 8), (8,)),
        ((8, 4), (4,)),
    )
    assert report.output_shape == (4,)
    assert report.total_params == (72 * 8 + 8) + (8 * 8 + 8) + (8 * 4 + 4)


def test_strict_conv_too_large_is_diagnosed():
    space = SearchSpace("bad-conv", (4, 4, 1))
    space.add_variable("conv", [
        IdentityOp(), Conv2DOp(2, 5, padding="valid"),
    ])
    space.add_fixed(FlattenOp(), name="flatten")
    space.add_fixed(DenseOp(2), name="head")
    report = analyze(space, (1,))
    assert not report.ok
    assert codes(report) & {"shape-mismatch", "spatial-collapse"}
    assert analyze(space, (0,)).ok


def test_strict_pool_larger_than_input_is_diagnosed():
    space = SearchSpace("bad-pool", (4, 4, 1))
    space.add_variable("pool", [IdentityOp(), MaxPool2DOp(8)])
    space.add_fixed(FlattenOp(), name="flatten")
    space.add_fixed(DenseOp(2), name="head")
    report = analyze(space, (1,))
    assert not report.ok
    assert "shape-mismatch" in codes(report)


def test_param_budget_violation(space):
    report = analyze(space, (1, 1, 1), param_budget=10)
    assert not report.ok
    assert "param-budget" in codes(report)
    assert analyze(space, (1, 1, 1), param_budget=10**6).ok


def test_float64_input_warns_and_promotes(space):
    report = analyze(space, (1, 0, 0), input_dtype="float64")
    assert report.ok  # warning, not error
    assert "float64-promotion" in codes(report)
    assert report.output_dtype == "float64"
    assert analyze(space, (1, 0, 0)).output_dtype == "float32"


def test_unsupported_dtype_raises(space):
    with pytest.raises(ValueError):
        analyze(space, (0, 0, 0), input_dtype="float16")


def test_malformed_sequence_raises(space):
    with pytest.raises(ValueError):
        analyze(space, (0, 0))  # wrong length
    with pytest.raises(ValueError):
        analyze(space, (99, 0, 0))  # out-of-range choice


def test_signature_key_stable_and_distinct(space):
    a1 = analyze(space, (1, 1, 1)).signature_key
    a2 = analyze(space, (1, 1, 1)).signature_key
    b = analyze(space, (2, 0, 0)).signature_key
    assert a1 == a2
    assert a1 != b


def test_shape_sequence_refuses_failed_report():
    space = SearchSpace("bad-conv", (4, 4, 1))
    space.add_variable("conv", [
        IdentityOp(), Conv2DOp(2, 5, padding="valid"),
    ])
    space.add_fixed(FlattenOp(), name="flatten")
    space.add_fixed(DenseOp(2), name="head")
    report = analyze(space, (1,))
    with pytest.raises(ValueError):
        report.shape_sequence


def test_dead_node_is_warned_not_errored():
    space = SearchSpace("branchy", (4, 4, 1))
    space.add_fixed(FlattenOp(), name="flatten")
    space.add_fixed(DenseOp(4), name="a", after="flatten")
    space.add_fixed(DenseOp(4), name="b", after="flatten")
    space.add_fixed(DenseOp(2), name="head", after="a")
    report = analyze(space, ())
    assert report.ok
    dead = [d for d in report.diagnostics if d.code == "dead-node"]
    assert [d.node for d in dead] == ["b"]


def test_multi_input_non_concat_is_error():
    space = SearchSpace("fanin", (4, 4, 1))
    space.add_fixed(FlattenOp(), name="flatten")
    space.add_fixed(DenseOp(4), name="a", after="flatten")
    space.add_fixed(DenseOp(4), name="b", after="flatten")
    space.add_fixed(DenseOp(2), name="head", after=["a", "b"])
    report = analyze(space, ())
    assert not report.ok
    assert "shape-mismatch" in codes(report)


def test_concat_adds_feature_dims():
    space = SearchSpace("concat", (4, 4, 1))
    space.add_fixed(FlattenOp(), name="flatten")
    space.add_fixed(DenseOp(4), name="a", after="flatten")
    space.add_fixed(DenseOp(6), name="b", after="flatten")
    space.add_fixed(ConcatenateOp(), name="cat", after=["a", "b"])
    space.add_fixed(DenseOp(2), name="head", after="cat")
    report = analyze(space, ())
    assert report.ok
    cat = next(layer for layer in report.layers if layer.node == "cat")
    assert cat.output_shape == (10,)


def test_analysis_rules_cover_all_op_kinds():
    assert set(ANALYZED_KINDS) == set(OP_METADATA)
