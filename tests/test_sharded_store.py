"""Sharded checkpoint store: consistent hashing, breakers, reroute."""

import numpy as np
import pytest

from repro.checkpoint import (
    CorruptCheckpointError,
    ShardBreaker,
    ShardedCheckpointStore,
    StoreUnavailableError,
)
from repro.cluster import SerialEvaluator, run_search
from repro.nas import RegularizedEvolution


def _weights(i=0):
    return {"w": np.full((4,), float(i), dtype=np.float32),
            "b": np.zeros((2,), dtype=np.float32)}


class _BoomShard:
    """Stand-in for a shard whose disk went away: every save raises."""

    def __init__(self, exc=OSError("disk full")):
        self.exc = exc

    def save(self, *a, **k):
        raise self.exc

    def exists(self, key):
        return False

    def delete(self, key):
        pass


# ---------------------------------------------------------------------------
# breaker state machine
# ---------------------------------------------------------------------------

def test_breaker_trips_after_consecutive_failures():
    b = ShardBreaker(failure_threshold=3, cooldown=10.0, clock=lambda: 0.0)
    assert b.allows_write()
    b.record_failure()
    b.record_failure()
    assert b.state == "closed" and b.allows_write()
    b.record_failure()
    assert b.state == "open" and not b.allows_write()
    assert b.trips == 1 and b.failures == 3


def test_breaker_success_resets_consecutive_count():
    b = ShardBreaker(failure_threshold=2)
    b.record_failure()
    b.record_success()
    b.record_failure()
    assert b.state == "closed"      # never 2 consecutive


def test_breaker_half_open_probe_and_reopen():
    t = [0.0]
    b = ShardBreaker(failure_threshold=1, cooldown=5.0, clock=lambda: t[0])
    b.record_failure()
    assert b.state == "open" and not b.allows_write()
    t[0] = 5.0
    assert b.allows_write() and b.state == "half_open"
    b.record_failure()              # probe failed: straight back to open
    assert b.state == "open" and b.trips == 2
    t[0] = 10.0
    assert b.allows_write()
    b.record_success()
    assert b.state == "closed" and b.allows_write()


def test_breaker_rejects_zero_threshold():
    with pytest.raises(ValueError):
        ShardBreaker(failure_threshold=0)


# ---------------------------------------------------------------------------
# consistent hashing + store API parity
# ---------------------------------------------------------------------------

def test_keys_spread_across_shards_and_placement_is_stable(tmp_path):
    store = ShardedCheckpointStore(tmp_path, num_shards=4)
    keys = [f"cand_{i:06d}" for i in range(32)]
    for i, key in enumerate(keys):
        store.save(key, _weights(i))
    assert all(len(shard) > 0 for shard in store.shards)
    assert sorted(store.keys()) == sorted(keys)
    assert len(store) == 32
    # placement is pure key hashing: a fresh instance over the same
    # root locates every key without any in-memory index
    again = ShardedCheckpointStore(tmp_path, num_shards=4)
    for i, key in enumerate(keys):
        assert again.shard_index(key) == store.shard_index(key)
        assert again.load(key)["w"][0] == float(i)


def test_store_api_parity_with_plain_store(tmp_path):
    store = ShardedCheckpointStore(tmp_path, num_shards=3)
    info = store.save("cand_000000", _weights(1), meta={"score": 0.5})
    assert info.nbytes == store.nbytes("cand_000000") > 0
    assert store.exists("cand_000000")
    assert store.load_meta("cand_000000") == {"score": 0.5}
    assert store.path("cand_000000").exists()
    assert store.total_bytes() == sum(store.sizes().values())
    store.delete("cand_000000")
    assert not store.exists("cand_000000")
    with pytest.raises(FileNotFoundError):
        store.load("cand_000000")
    with pytest.raises(FileNotFoundError):
        store.nbytes("cand_000000")


def test_quarantine_lands_in_owning_shard(tmp_path):
    store = ShardedCheckpointStore(tmp_path, num_shards=2)
    store.save("cand_000007", _weights())
    owner = store.shards[store.shard_index("cand_000007")]
    store.path("cand_000007").write_bytes(b"garbage")
    with pytest.raises(CorruptCheckpointError):
        store.load("cand_000007")
    store.quarantine("cand_000007")
    assert not store.exists("cand_000007")
    assert store.quarantined_keys() == ["cand_000007"]
    assert owner.quarantined_keys() == ["cand_000007"]


def test_crc_verification_applies_through_shards(tmp_path):
    store = ShardedCheckpointStore(tmp_path, num_shards=2)
    store.save("cand_000001", _weights(3))
    path = store.path("cand_000001")
    # append bytes: still a readable zip, but not the bytes that were
    # hashed at save time — only the CRC catches this
    path.write_bytes(path.read_bytes() + b"\x00" * 8)
    with pytest.raises(CorruptCheckpointError, match="CRC32"):
        store.load("cand_000001")


# ---------------------------------------------------------------------------
# breaker-driven write rerouting
# ---------------------------------------------------------------------------

def test_failing_shard_reroutes_writes_and_books_degradation(tmp_path):
    store = ShardedCheckpointStore(tmp_path, num_shards=3,
                                   failure_threshold=2, cooldown=100.0)
    victim = store.shard_index("cand_000042")
    store.shards[victim] = _BoomShard()
    store.save("cand_000042", _weights(1))      # failure 1 -> rerouted
    # drive a second failure through the victim to trip its breaker
    key2 = next(f"k{i}" for i in range(100)
                if store.shard_index(f"k{i}") == victim)
    store.save(key2, _weights(3))
    stats = store.breaker_stats()
    assert stats["failed_writes"] == 2
    assert stats["rerouted_writes"] >= 2
    assert stats["trips"] == 1
    assert victim in stats["open_shards"]
    # both checkpoints are readable from their fallback shards
    assert store.load("cand_000042")["w"][0] == 1.0
    assert store.load(key2)["w"][0] == 3.0
    # the open breaker takes the shard out of rotation: no new failures
    key3 = next(f"m{i}" for i in range(100)
                if store.shard_index(f"m{i}") == victim)
    store.save(key3, _weights(4))
    assert store.breaker_stats()["failed_writes"] == 2


def test_reroute_deletes_stale_copy_on_old_shard(tmp_path):
    store = ShardedCheckpointStore(tmp_path, num_shards=2,
                                   failure_threshold=1, cooldown=100.0)
    store.save("cand_000005", _weights(1))
    home = store.shard_index("cand_000005")
    real = store.shards[home]
    # only writes fail: the shard's existing content stays readable
    real.save = _BoomShard().save
    store.save("cand_000005", _weights(9))      # rerouted overwrite
    del real.save
    # the old copy is gone: every read sees the rerouted version
    assert not real.exists("cand_000005")
    assert store.load("cand_000005")["w"][0] == 9.0


def test_all_shards_down_raises_store_unavailable(tmp_path):
    store = ShardedCheckpointStore(tmp_path, num_shards=2,
                                   failure_threshold=1)
    store.shards = [_BoomShard(), _BoomShard()]
    with pytest.raises(StoreUnavailableError):
        store.save("cand_000000", _weights())


def test_half_open_probe_restores_shard_after_cooldown(tmp_path):
    t = [0.0]
    store = ShardedCheckpointStore(tmp_path, num_shards=2,
                                   failure_threshold=1, cooldown=5.0,
                                   clock=lambda: t[0])
    victim = store.shard_index("kk")
    real = store.shards[victim]
    store.shards[victim] = _BoomShard()
    store.save("kk", _weights())
    assert store.breakers[victim].state == "open"
    store.shards[victim] = real                 # the "disk" comes back
    t[0] = 6.0
    key = next(f"p{i}" for i in range(100)
               if store.shard_index(f"p{i}") == victim)
    store.save(key, _weights())                 # the half-open probe
    assert store.breakers[victim].state == "closed"
    assert real.exists(key)


def test_reset_breakers_is_an_operator_override(tmp_path):
    store = ShardedCheckpointStore(tmp_path, num_shards=2,
                                   failure_threshold=1, cooldown=1e9)
    victim = store.shard_index("k")
    store.shards[victim] = _BoomShard()
    store.save("k", _weights())
    assert store.breaker_stats()["open_shards"]
    store.reset_breakers()
    assert store.breaker_stats()["open_shards"] == []


# ---------------------------------------------------------------------------
# integration: the scheduler over a sharded, degrading store
# ---------------------------------------------------------------------------

def test_search_completes_over_sharded_store(space, problem, tmp_path):
    store = ShardedCheckpointStore(tmp_path, num_shards=3)
    strategy = RegularizedEvolution(space, rng=0, population_size=4,
                                    sample_size=2)
    trace = run_search(problem, strategy, 8, scheme="lcs", store=store,
                       evaluator=SerialEvaluator(), seed=0)
    assert len(trace) == 8
    assert all(r.ok for r in trace)
    assert any(r.provider_id is not None for r in trace.records)
    # a healthy sharded store is invisible in the fault accounting
    assert trace.fault_stats is None


def test_search_survives_shard_failure_and_books_it(space, problem,
                                                    tmp_path):
    store = ShardedCheckpointStore(tmp_path, num_shards=3,
                                   failure_threshold=1, cooldown=1e9)
    # wreck one shard before the search starts
    store.shards[1] = _BoomShard()
    strategy = RegularizedEvolution(space, rng=0, population_size=4,
                                    sample_size=2)
    trace = run_search(problem, strategy, 8, scheme="lcs", store=store,
                       evaluator=SerialEvaluator(), seed=0)
    assert len(trace) == 8
    assert all(r.ok for r in trace)
    # the degradation is visible, not fatal
    degraded = trace.fault_stats["store"]
    assert degraded["rerouted_writes"] > 0 or degraded["trips"] > 0
    assert 1 in degraded["open_shards"]
