#!/usr/bin/env python
"""Quickstart: NAS with selective weight transfer in ~40 lines.

Builds a small search space over a synthetic image-classification task,
runs regularized evolution twice — once training every candidate from
scratch (the baseline) and once with LCS weight transfer from each
child's parent — and prints the score trajectories and best candidates.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.apps import make_image_dataset
from repro.checkpoint import CheckpointStore
from repro.cluster import run_search
from repro.nas import (
    ActivationOp,
    Conv2DOp,
    DenseOp,
    DropoutOp,
    FlattenOp,
    IdentityOp,
    MaxPool2DOp,
    Problem,
    RegularizedEvolution,
    SearchSpace,
)


def build_space() -> SearchSpace:
    """A 5-variable-node convolutional space (~2,000 candidates)."""
    space = SearchSpace("quickstart", (12, 12, 1))
    space.add_variable(
        "conv",
        [Conv2DOp(f, 3, "same", activation="relu", adaptive=True) for f in (4, 8, 16)],
    )
    space.add_variable("pool", [IdentityOp(), MaxPool2DOp(2, 2, adaptive=True)])
    space.add_fixed(FlattenOp(), name="flatten")
    space.add_variable(
        "dense", [IdentityOp(), DenseOp(32), DenseOp(64), DenseOp(128)]
    )
    space.add_variable(
        "act", [ActivationOp("relu"), ActivationOp("tanh"), ActivationOp("sigmoid")]
    )
    space.add_variable("drop", [IdentityOp(), DropoutOp(0.2), DropoutOp(0.5)])
    space.add_fixed(DenseOp(5), name="head")
    return space


def main() -> None:
    space = build_space()
    print(f"search space: {space.num_variable_nodes} variable nodes, "
          f"{space.size} candidate models")

    problem = Problem(
        name="quickstart",
        space=space,
        dataset=make_image_dataset(
            n_train=256, n_val=64, height=12, width=12, channels=1, classes=5, seed=7
        ),
        learning_rate=0.02,
        batch_size=32,
    )

    results = {}
    for scheme in ("baseline", "lcs"):
        store = CheckpointStore(tempfile.mkdtemp(prefix=f"quickstart-{scheme}-"))
        strategy = RegularizedEvolution(
            space, rng=42, population_size=8, sample_size=4
        )
        trace = run_search(
            problem, strategy, num_candidates=24, scheme=scheme, store=store
        )
        results[scheme] = trace
        scores = [r.score for r in trace.ok_records()]
        best = trace.best(1)[0]
        print(f"\n[{scheme}] evaluated {len(trace)} candidates in "
              f"{trace.makespan:.1f}s")
        print(f"  mean score {np.mean(scores):.3f}, best {best.score:.3f} "
              f"(arch {best.arch_seq})")
        print("  best architecture choices:")
        for line in space.describe(best.arch_seq):
            print(f"    {line}")

    base = np.mean([r.score for r in results["baseline"].ok_records()[8:]])
    lcs = np.mean([r.score for r in results["lcs"].ok_records()[8:]])
    print(f"\npost-warmup mean score: baseline={base:.3f}  lcs={lcs:.3f}")
    print("weight transfer should match or beat the baseline on average.")


if __name__ == "__main__":
    main()
