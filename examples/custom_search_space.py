#!/usr/bin/env python
"""Defining your own search space and inspecting LP/LCS weight transfer.

Walks through the paper's Figure 3 scenario explicitly: a provider and a
receiver convolutional model where the receiver has one extra conv layer.
LP (longest prefix) can only transfer the leading layers; LCS (longest
common subsequence) additionally recovers the matching tail around the
insertion.

Run:  python examples/custom_search_space.py
"""

from __future__ import annotations

import numpy as np

from repro.nas import (
    Conv2DOp,
    DenseOp,
    FlattenOp,
    IdentityOp,
    SearchSpace,
)
from repro.transfer import (
    lcs_match,
    longest_prefix_match,
    shape_sequence,
    transfer_weights,
)


def build_space() -> SearchSpace:
    """One variable node decides whether the extra conv layer exists."""
    space = SearchSpace("figure3", (10, 10, 3))
    space.add_fixed(
        Conv2DOp(16, 3, "same", activation="relu"), name="conv_a"
    )
    space.add_variable(
        "maybe_conv", [IdentityOp(), Conv2DOp(16, 3, "same", activation="relu")]
    )
    space.add_fixed(FlattenOp(), name="flatten")
    space.add_fixed(DenseOp(10), name="head")
    return space


def show(title: str, seq) -> None:
    print(f"  {title}:")
    for sig in seq:
        print(f"    {sig}")


def main() -> None:
    space = build_space()
    rng = np.random.default_rng(0)

    provider = space.build_network((0,), rng, name="provider")   # no extra conv
    receiver = space.build_network((1,), rng, name="receiver")   # extra conv

    print("shape sequences (one signature per parameterized layer):")
    show("provider", shape_sequence(provider))
    show("receiver", shape_sequence(receiver))

    p_seq = shape_sequence(provider)
    r_seq = shape_sequence(receiver)
    lp = longest_prefix_match(p_seq, r_seq)
    lcs = lcs_match(p_seq, r_seq)
    print(f"\nLP  matches {lp.length} layer(s): {lp.pairs}")
    print(f"LCS matches {lcs.length} layer(s): {lcs.pairs}")
    assert lcs.length > lp.length, "LCS must recover the tail past the insertion"

    # actually move the weights and verify what changed
    provider_weights = provider.get_weights()
    for matcher in ("lp", "lcs"):
        fresh = space.build_network((1,), np.random.default_rng(99))
        stats = transfer_weights(fresh, provider_weights, matcher=matcher)
        print(f"\n{matcher.upper()} transfer: {stats.num_layers_transferred} layers, "
              f"{stats.num_transferred} tensors, coverage {stats.coverage:.0%}")
        head_moved = "head_dense.kernel" in stats.transferred_names
        print(f"  final dense layer transferred: {head_moved}")

    print("\nAs in the paper's Figure 3: LP stops at the inserted conv layer;")
    print("LCS additionally transfers the final dense layer.")


if __name__ == "__main__":
    main()
