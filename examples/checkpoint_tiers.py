#!/usr/bin/env python
"""Checkpointing extensions: async write-behind, multi-level tiers,
compression (the paper's Section IX/X complementary directions).

Measures, on a real model checkpoint:

* synchronous save latency vs enqueue latency of the write-behind writer;
* a VELOC-style two-tier store (fast local + slow "parallel filesystem");
* plain vs compressed checkpoint sizes.

Run:  python examples/checkpoint_tiers.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.apps import get_app
from repro.checkpoint import (
    AsyncCheckpointWriter,
    CheckpointStore,
    MultiLevelStore,
)


def main() -> None:
    problem = get_app("nt3").problem(seed=0, n_train=64, n_val=16)
    model = problem.build_model(problem.space.sample(np.random.default_rng(0)))
    weights = model.get_weights()
    nbytes = sum(w.nbytes for w in weights.values())
    print(f"model: {model.num_parameters()} parameters, "
          f"{len(weights)} tensors, {nbytes / 1e6:.1f} MB in memory\n")

    root = Path(tempfile.mkdtemp(prefix="ckpt-tiers-"))

    # 1. sync vs async save latency
    sync_store = CheckpointStore(root / "sync")
    t0 = time.perf_counter()
    for i in range(10):
        sync_store.save(f"cand_{i}", weights)
    sync_s = (time.perf_counter() - t0) / 10

    async_store = CheckpointStore(root / "async")
    with AsyncCheckpointWriter(async_store) as writer:
        t0 = time.perf_counter()
        for i in range(10):
            writer.save(f"cand_{i}", weights)
        enqueue_s = (time.perf_counter() - t0) / 10
        t0 = time.perf_counter()
        writer.flush()
        drain_s = time.perf_counter() - t0
    print(f"synchronous save:        {1000 * sync_s:7.1f} ms/checkpoint")
    print(f"write-behind enqueue:    {1000 * enqueue_s:7.1f} ms/checkpoint "
          f"(+{1000 * drain_s:.0f} ms off the critical path)")

    # 2. multi-level tier
    with MultiLevelStore(root / "local", root / "pfs") as tiers:
        t0 = time.perf_counter()
        tiers.save("cand", weights)
        local_s = time.perf_counter() - t0
        tiers.flush()
        assert tiers.pfs.exists("cand")
    print(f"two-tier local save:     {1000 * local_s:7.1f} ms "
          f"(PFS copy arrives asynchronously)")

    # 3. compression
    plain = CheckpointStore(root / "plain").save("c", weights).nbytes
    packed = CheckpointStore(root / "packed", compress=True).save("c", weights).nbytes
    print(f"\ncheckpoint size plain:      {plain / 1e6:6.2f} MB")
    print(f"checkpoint size compressed: {packed / 1e6:6.2f} MB "
          f"({100 * (1 - packed / plain):.0f}% saved)")
    print("\nLess I/O per checkpoint directly shrinks the transfer-scheme")
    print("overhead that Figure 10 charges against NT3-style applications.")


if __name__ == "__main__":
    main()
