#!/usr/bin/env python
"""Multi-GPU scalability simulation (the paper's Figure 10 scenario).

Runs the candidate-estimation phase for two contrasting applications on a
discrete-event cluster with 8, 16 and 32 simulated GPUs:

* CIFAR-10-like — long training tasks: near-linear scaling, transfer
  overhead invisible;
* NT3-like — very short tasks with comparatively large checkpoints: the
  serial scheduler and the checkpoint I/O cap the scaling, reproducing
  the paper's NT3 anomaly.

Run:  python examples/scalability_simulation.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.apps import get_app
from repro.checkpoint import CheckpointStore
from repro.cluster import SimulatedCluster
from repro.nas import RegularizedEvolution

NUM_CANDIDATES = 160
GPU_COUNTS = (8, 16, 32)
OVERRIDES = {
    "cifar10": dict(n_train=96, n_val=32, height=10, width=10),
    "nt3": dict(n_train=96, n_val=32, length=256, n_motifs=4, signal=0.8),
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="scaling-"))
    for app in ("cifar10", "nt3"):
        spec = get_app(app)
        problem = spec.problem(seed=0, **OVERRIDES[app])
        print(f"\n=== {app} ===")
        for scheme in ("baseline", "lcs"):
            makespans = {}
            for gpus in GPU_COUNTS:
                store = CheckpointStore(workdir / f"{app}-{scheme}-{gpus}")
                cluster = SimulatedCluster(
                    problem, store, num_gpus=gpus, cost_model=spec.cost_model()
                )
                strategy = RegularizedEvolution(
                    problem.space, rng=0, population_size=8, sample_size=4
                )
                trace = cluster.run(
                    strategy, num_candidates=NUM_CANDIDATES, scheme=scheme
                )
                makespans[gpus] = trace.makespan
            base = makespans[GPU_COUNTS[0]]
            cells = "  ".join(
                f"{g} GPUs: {m:7.1f}s (x{base / m:.2f})"
                for g, m in makespans.items()
            )
            print(f"  [{scheme:<8}] {cells}")
        ideal = GPU_COUNTS[-1] // GPU_COUNTS[0]
        print(f"  (ideal {GPU_COUNTS[0]}->{GPU_COUNTS[-1]} speedup: x{ideal:.2f})")

    print("\nExpected: near-ideal scaling for cifar10; nt3 saturates because")
    print("its ~5s tasks serialize on the scheduler and pay checkpoint I/O.")


if __name__ == "__main__":
    main()
