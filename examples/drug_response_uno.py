#!/usr/bin/env python
"""Multi-input drug-response NAS (the paper's Uno application).

Demonstrates the full two-phase NAS pipeline on the Uno-like multi-source
regression problem:

1. candidate estimation with regularized evolution, comparing all three
   schemes (baseline / LP / LCS) under the same simulated 8-GPU cluster;
2. full training of each scheme's top-3 models with the paper's early
   stopping, reporting epochs-to-convergence and the final R^2.

Run:  python examples/drug_response_uno.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.apps import get_app
from repro.checkpoint import CheckpointStore
from repro.cluster import SimulatedCluster, checkpoint_key
from repro.nas import RegularizedEvolution, full_train

NUM_CANDIDATES = 36
TOP_K = 3


def main() -> None:
    spec = get_app("uno")
    problem = spec.problem(seed=0, n_train=256, n_val=96)
    print("Uno-like drug-response regression")
    print(f"  sources: {problem.space.input_shapes}")
    print(f"  search space: {problem.space.size:.3g} candidates, "
          f"{problem.space.num_variable_nodes} variable nodes\n")

    workdir = Path(tempfile.mkdtemp(prefix="uno-nas-"))
    summaries = {}
    for scheme in ("baseline", "lp", "lcs"):
        store = CheckpointStore(workdir / scheme)
        cluster = SimulatedCluster(
            problem, store, num_gpus=8, cost_model=spec.cost_model()
        )
        strategy = RegularizedEvolution(
            problem.space, rng=1, population_size=10, sample_size=5
        )
        trace = cluster.run(strategy, num_candidates=NUM_CANDIDATES, scheme=scheme)
        print(f"[{scheme}] estimation done: virtual makespan "
              f"{trace.makespan:.0f}s on 8 GPUs")

        # phase 2: fully train the top-K (transfer schemes resume from
        # their partial-training checkpoints)
        rows = []
        for rec in trace.best(TOP_K):
            initial = None
            if scheme != "baseline" and store.exists(checkpoint_key(rec.candidate_id)):
                initial = store.load(checkpoint_key(rec.candidate_id))
            result = full_train(
                problem, rec.arch_seq, seed=0, initial_weights=initial
            )
            rows.append((rec.score, result.epochs, result.score))
        summaries[scheme] = rows
        for est, epochs, r2 in rows:
            print(f"    est={est:+.3f} -> fully trained R2={r2:+.3f} "
                  f"in {epochs} epochs (early stop)")
        print()

    print("epochs to convergence (mean over top-3):")
    base_epochs = np.mean([e for _, e, _ in summaries["baseline"]])
    for scheme, rows in summaries.items():
        mean_epochs = np.mean([e for _, e, _ in rows])
        mean_r2 = np.mean([r for _, _, r in rows])
        speedup = base_epochs / mean_epochs
        print(f"  {scheme:<9} epochs={mean_epochs:.1f} "
              f"(speedup {speedup:.2f}x)  R2={mean_r2:+.3f}")


if __name__ == "__main__":
    main()
